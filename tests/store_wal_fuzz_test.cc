// Fuzz suite for the store WAL, mirroring graph_serialization_fuzz_test:
// ReplayWalBuffer must survive arbitrary hostile bytes (torn tails, bad
// checksums, zero-length and oversized frames) without crashing, and
// whatever it does recover must be a true prefix of what was written.
// Run it under KG_SANITIZE=undefined/address to make "survive" mean it.

#include "store/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"

namespace kg::store {
namespace {

using graph::NodeKind;
using graph::Provenance;

// Alphabet skewed toward framing hazards: bytes that look like small
// little-endian lengths, tabs/newlines the TSV payload must escape, NUL
// and high bytes, and fragments of valid-looking records.
std::string RandomToken(Rng& rng) {
  static const std::vector<std::string> kAtoms = {
      std::string(1, '\0'), std::string(4, '\0'),
      "\t", "\n", "\\", "\\t", "\xff\xff\xff\xff", "\x01\x00\x00\x00",
      "\x7f", "\xc3\xa9", "U\t", "R\t", "entity", "class", "text",
      "1.5", "-3", "a", "", ":",
  };
  const size_t len = rng.UniformIndex(7);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kAtoms[rng.UniformIndex(kAtoms.size())];
  }
  return out;
}

NodeKind RandomKind(Rng& rng) {
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return NodeKind::kEntity;
    case 1:
      return NodeKind::kText;
    default:
      return NodeKind::kClass;
  }
}

Mutation RandomMutation(Rng& rng) {
  if (rng.Bernoulli(0.3)) {
    return Mutation::Retract(RandomToken(rng), RandomToken(rng),
                             RandomToken(rng), RandomKind(rng),
                             RandomKind(rng));
  }
  Provenance prov;
  prov.source = RandomToken(rng);
  prov.confidence = rng.Bernoulli(0.2) ? 1.0 : rng.UniformDouble();
  prov.timestamp = rng.UniformInt(-1000000, 1000000);
  return Mutation::Upsert(RandomToken(rng), RandomToken(rng),
                          RandomToken(rng), RandomKind(rng),
                          RandomKind(rng), std::move(prov));
}

TEST(WalFuzzTest, MutationEncodeDecodeRoundTripsHostileFields) {
  Rng rng(7001);
  for (int i = 0; i < 2000; ++i) {
    const Mutation m = RandomMutation(rng);
    const std::string payload = EncodeMutation(m);
    // Framing safety: the payload itself never contains a newline that
    // could confuse line-oriented tooling reading the log.
    EXPECT_EQ(payload.find('\n'), std::string::npos);
    auto decoded = DecodeMutation(payload);
    ASSERT_TRUE(decoded.ok()) << "iter " << i << ": " << decoded.status();
    ASSERT_EQ(*decoded, m) << "iter " << i;
  }
}

TEST(WalFuzzTest, ReplayArbitraryBytesNeverCrashes) {
  Rng rng(7002);
  for (int i = 0; i < 3000; ++i) {
    std::string garbage;
    const size_t chunks = rng.UniformIndex(40);
    for (size_t c = 0; c < chunks; ++c) garbage += RandomToken(rng);
    const WalReplay replay = ReplayWalBuffer(garbage);
    EXPECT_LE(replay.valid_bytes, garbage.size());
    EXPECT_EQ(replay.valid_bytes + replay.dropped_bytes, garbage.size());
    // Whatever was recovered must decode back from its own encoding —
    // i.e. replay never fabricates an unrepresentable mutation.
    for (const Mutation& m : replay.mutations) {
      auto redecoded = DecodeMutation(EncodeMutation(m));
      ASSERT_TRUE(redecoded.ok());
      ASSERT_EQ(*redecoded, m);
    }
  }
}

TEST(WalFuzzTest, ReplayValidLogWithRandomCorruptionYieldsTruePrefix) {
  Rng rng(7003);
  for (int iter = 0; iter < 400; ++iter) {
    const size_t count = 1 + rng.UniformIndex(10);
    std::vector<Mutation> mutations;
    std::vector<size_t> frame_ends;
    std::string buf;
    for (size_t i = 0; i < count; ++i) {
      mutations.push_back(RandomMutation(rng));
      AppendWalFrame(&buf, EncodeMutation(mutations.back()));
      frame_ends.push_back(buf.size());
    }
    // One of: byte flip, truncation, or garbage appended at a random spot.
    const size_t pos = rng.UniformIndex(buf.size());
    const int mode = static_cast<int>(rng.UniformInt(0, 2));
    if (mode == 0) {
      buf[pos] = static_cast<char>(buf[pos] ^ (1 + rng.UniformIndex(255)));
    } else if (mode == 1) {
      buf.resize(pos);
    } else {
      buf.insert(pos, RandomToken(rng) + std::string(1, '\x00'));
    }
    const WalReplay replay = ReplayWalBuffer(buf);
    // Frames strictly before the damage are untouched: they must all be
    // recovered verbatim, in order.
    size_t intact = 0;
    while (intact < frame_ends.size() && frame_ends[intact] <= pos) {
      ++intact;
    }
    ASSERT_GE(replay.mutations.size(), intact) << "iter " << iter;
    for (size_t i = 0; i < intact; ++i) {
      ASSERT_EQ(replay.mutations[i], mutations[i])
          << "iter " << iter << ", record " << i;
    }
    EXPECT_LE(replay.valid_bytes, buf.size());
  }
}

TEST(WalFuzzTest, OversizedDeclaredLengthIsRejectedNotBelieved) {
  // A header declaring a payload far larger than the file must stop the
  // replay rather than read out of bounds or allocate the declared size.
  std::string buf;
  AppendWalFrame(&buf, EncodeMutation(Mutation::Retract(
                           "s", "p", "o", NodeKind::kEntity,
                           NodeKind::kEntity)));
  const size_t valid = buf.size();
  // length = 0xFFFFFFFF, checksum = whatever.
  buf += std::string("\xff\xff\xff\xff\x00\x00\x00\x00", 8);
  buf += "trailing";
  const WalReplay replay = ReplayWalBuffer(buf);
  EXPECT_EQ(replay.mutations.size(), 1u);
  EXPECT_EQ(replay.valid_bytes, valid);
  EXPECT_FALSE(replay.clean);
}

}  // namespace
}  // namespace kg::store
