#include "graph/paths.h"

#include <gtest/gtest.h>

namespace kg::graph {
namespace {

// A tiny movie graph: p1 directed m1; a1/a2 acted in m1; a1 acted in m2;
// p1 directed m2.
class PathsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const char* s, const char* p, const char* o) {
      kg_.AddTriple(s, p, o, NodeKind::kEntity, NodeKind::kEntity,
                    {"t", 1.0, 0});
    };
    add("m1", "directed_by", "p1");
    add("m2", "directed_by", "p1");
    add("a1", "acted_in", "m1");
    add("a2", "acted_in", "m1");
    add("a1", "acted_in", "m2");
    m1_ = *kg_.FindNode("m1", NodeKind::kEntity);
    m2_ = *kg_.FindNode("m2", NodeKind::kEntity);
    p1_ = *kg_.FindNode("p1", NodeKind::kEntity);
    a1_ = *kg_.FindNode("a1", NodeKind::kEntity);
    a2_ = *kg_.FindNode("a2", NodeKind::kEntity);
    directed_ = *kg_.FindPredicate("directed_by");
    acted_ = *kg_.FindPredicate("acted_in");
  }

  KnowledgeGraph kg_;
  NodeId m1_ = 0, m2_ = 0, p1_ = 0, a1_ = 0, a2_ = 0;
  PredicateId directed_ = 0, acted_ = 0;
};

TEST_F(PathsTest, ShortestPathDirect) {
  const auto path = ShortestPath(kg_, m1_, p1_);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(kg_.triple(path[0]).predicate, directed_);
}

TEST_F(PathsTest, ShortestPathTwoHops) {
  // a2 -> m1 -> p1.
  const auto path = ShortestPath(kg_, a2_, p1_);
  EXPECT_EQ(path.size(), 2u);
}

TEST_F(PathsTest, ShortestPathUnreachable) {
  const NodeId island = kg_.AddNode("island", NodeKind::kEntity);
  EXPECT_TRUE(ShortestPath(kg_, island, p1_).empty());
}

TEST_F(PathsTest, ShortestPathSelfIsEmpty) {
  EXPECT_TRUE(ShortestPath(kg_, m1_, m1_).empty());
}

TEST_F(PathsTest, NeighborhoodRadii) {
  EXPECT_EQ(Neighborhood(kg_, a2_, 0).size(), 1u);
  EXPECT_EQ(Neighborhood(kg_, a2_, 1).size(), 2u);  // +m1.
  // radius 2: m1's neighbors p1, a1 join.
  EXPECT_EQ(Neighborhood(kg_, a2_, 2).size(), 4u);
  EXPECT_EQ(Neighborhood(kg_, a2_, 10).size(), 5u);  // whole component.
}

TEST_F(PathsTest, EnumerateFindsCoStarPath) {
  // a2 -> m1 (acted_in) -> a1 (^acted_in): the "co-star" path.
  const auto counts = EnumerateRelationPaths(kg_, a2_, a1_, 2);
  EXPECT_TRUE(counts.count("acted_in/^acted_in"));
}

TEST_F(PathsTest, PathReachProbability) {
  // From a2: acted_in surely reaches m1.
  EXPECT_DOUBLE_EQ(
      PathReachProbability(kg_, a2_, m1_, {{acted_, false}}), 1.0);
  // From a1 (two movies), acted_in reaches m1 with probability 0.5.
  EXPECT_DOUBLE_EQ(
      PathReachProbability(kg_, a1_, m1_, {{acted_, false}}), 0.5);
  // Impossible path.
  EXPECT_DOUBLE_EQ(
      PathReachProbability(kg_, a1_, p1_, {{directed_, false}}), 0.0);
  // Two-step: acted_in then directed_by reaches p1 with probability 1.
  EXPECT_DOUBLE_EQ(PathReachProbability(
                       kg_, a2_, p1_, {{acted_, false}, {directed_, false}}),
                   1.0);
}

TEST_F(PathsTest, RelationPathToString) {
  RelationPath path = {{acted_, false}, {directed_, true}};
  EXPECT_EQ(RelationPathToString(kg_, path), "acted_in/^directed_by");
}

}  // namespace
}  // namespace kg::graph
