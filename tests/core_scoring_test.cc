#include "core/extraction_scoring.h"

#include <gtest/gtest.h>

#include "core/conversions.h"
#include "synth/website_generator.h"

namespace kg::core {
namespace {

TEST(ScoreClosedTest, MatchesNormalizedValues) {
  synth::WebPage page;
  page.displayed_values = {{"genre", "Drama"}, {"director", "Ada Novak"}};
  ExtractionQuality q;
  ScoreClosedExtractions(page,
                         {{"genre", "drama!", 0.9, 0},
                          {"director", "Wrong Person", 0.9, 0},
                          {"unknown_attr", "x", 0.9, 0}},
                         &q);
  q.Finish();
  EXPECT_EQ(q.extracted, 3u);
  EXPECT_EQ(q.correct, 1u);
  EXPECT_NEAR(q.accuracy, 1.0 / 3.0, 1e-9);
}

TEST(ScoreOpenTest, MapsLabelsThroughSiteVocabulary) {
  synth::Website site;
  site.domain = synth::SourceDomain::kMovies;
  site.attr_labels = {{"genre", "Category"}, {"runtime", "Runtime:"}};
  synth::WebPage page;
  page.displayed_values = {{"genre", "drama"}, {"runtime", "120 min"}};
  ExtractionQuality q;
  ScoreOpenExtractions(site, page,
                       {{"category", "drama", 0.7, 0},
                        {"runtime", "120 min", 0.7, 0},
                        {"see also", "Other Movie", 0.7, 0}},
                       &q);
  q.Finish();
  EXPECT_EQ(q.extracted, 3u);
  EXPECT_EQ(q.correct, 2u);
  // runtime is not canonical -> counted as open knowledge gain.
  EXPECT_EQ(q.correct_open, 1u);
}

TEST(ConversionsTest, ManualMappingRoundTrip) {
  synth::UniverseOptions uopt;
  uopt.num_people = 100;
  uopt.num_movies = 80;
  uopt.num_songs = 20;
  Rng rng(1);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions opt;
  opt.schema_dialect = 2;
  opt.missing_rate = 0.0;
  const auto table = synth::EmitSource(universe, opt, rng);
  std::vector<uint32_t> truth;
  const auto records =
      ToRecordSet(table, ManualMappingFor(table), &truth);
  ASSERT_EQ(records.records.size(), table.records.size());
  ASSERT_EQ(truth.size(), table.records.size());
  // Canonical keys present after mapping.
  for (const auto& rec : records.records) {
    EXPECT_TRUE(rec.attrs.count("title"));
    EXPECT_TRUE(rec.attrs.count("release_year"));
  }
}

TEST(ConversionsTest, LinkagePairsLabeledByHiddenTruth) {
  synth::UniverseOptions uopt;
  uopt.num_people = 150;
  uopt.num_movies = 150;
  uopt.num_songs = 20;
  Rng rng(2);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions o1, o2;
  o1.coverage = o2.coverage = 0.8;
  const auto t1 = synth::EmitSource(universe, o1, rng);
  const auto t2 = synth::EmitSource(universe, o2, rng);
  std::vector<uint32_t> truth1, truth2;
  const auto r1 = ToRecordSet(t1, ManualMappingFor(t1), &truth1);
  const auto r2 = ToRecordSet(t2, ManualMappingFor(t2), &truth2);
  const auto pairs = BuildLinkagePairs(
      r1, truth1, r2, truth2,
      LinkageSchemaFor(synth::SourceDomain::kMovies));
  ASSERT_GT(pairs.size(), 50u);
  size_t positives = 0;
  for (const auto& ex : pairs.examples) positives += ex.label;
  EXPECT_GT(positives, 20u);
  EXPECT_LT(positives, pairs.size());
  EXPECT_EQ(pairs.feature_names.size(),
            pairs.examples[0].features.size());
}

}  // namespace
}  // namespace kg::core
