#include "common/rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace kg {
namespace {

// Raw mt19937_64 outputs are fully specified by the C++ standard, so these
// golden streams pin Split's behavior across platforms and compilers.
// Regenerate (only if the Split mixing function deliberately changes) by
// printing Rng(42).Split(shard).engine()() ten times per shard.
constexpr uint64_t kExpected[4][10] = {
    // shard 0
    {2634440447081024816ULL, 1820987917041237109ULL,
     13037550764499033374ULL, 4655635372978506640ULL,
     7356819061247034444ULL, 1916287782993452631ULL,
     8829021679604019918ULL, 16079697981679594751ULL,
     12573527161957353331ULL, 14427783202588178996ULL},
    // shard 1
    {5902466118967155341ULL, 10410330840763893017ULL,
     7187036391553770098ULL, 5355452437944497382ULL,
     14070470277998234926ULL, 16945181658251027004ULL,
     8148133643679642287ULL, 3717964983328908422ULL,
     5553641907423200082ULL, 14613721377709182881ULL},
    // shard 2
    {210554078924749278ULL, 10274272111491794861ULL,
     1001315208180475940ULL, 2205355984741621379ULL,
     13514859891668753840ULL, 1574086175199027846ULL,
     17657269862853843094ULL, 5850072922946373122ULL,
     11972868086172473143ULL, 5620980925612191390ULL},
    // shard 3
    {15534206786027812474ULL, 3884173044072065852ULL,
     14758637498151657242ULL, 13994128819442202394ULL,
     15658243551855822325ULL, 16140351574564930521ULL,
     5812454582488240373ULL, 14977807589130681785ULL,
     16739678670657891446ULL, 14905842783864904317ULL},
};

TEST(RngSplitTest, FirstTenDrawsPerShardAreStable) {
  Rng root(42);
  for (uint64_t shard = 0; shard < 4; ++shard) {
    Rng stream = root.Split(shard);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(stream.engine()(), kExpected[shard][i])
          << "shard " << shard << " draw " << i;
    }
  }
}

TEST(RngSplitTest, SplitDoesNotPerturbParent) {
  Rng with_splits(42);
  Rng untouched(42);
  (void)with_splits.Split(0);
  (void)with_splits.Split(17);
  (void)with_splits.Split(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(with_splits.engine()(), untouched.engine()());
  }
}

TEST(RngSplitTest, SameShardIdYieldsSameStream) {
  Rng root(7);
  Rng a = root.Split(3);
  Rng b = root.Split(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(RngSplitTest, ShardSeedsAreDistinctFromParentAndEachOther) {
  Rng root(42);
  std::unordered_set<uint64_t> seeds{root.seed()};
  for (uint64_t shard = 0; shard < 1000; ++shard) {
    EXPECT_TRUE(seeds.insert(root.Split(shard).seed()).second)
        << "seed collision at shard " << shard;
  }
}

TEST(RngSplitTest, StreamsArePairwiseNonOverlappingOver1e5Draws) {
  // Overlapping mt19937_64 streams would repeat values; with 4 x 1e5
  // 64-bit draws, a single accidental collision has probability ~4e-9,
  // and the check is fully deterministic for these fixed seeds.
  constexpr size_t kShards = 4;
  constexpr size_t kDraws = 100000;
  Rng root(42);
  std::unordered_set<uint64_t> all;
  all.reserve(kShards * kDraws);
  for (uint64_t shard = 0; shard < kShards; ++shard) {
    Rng stream = root.Split(shard);
    for (size_t i = 0; i < kDraws; ++i) {
      all.insert(stream.engine()());
    }
  }
  EXPECT_EQ(all.size(), kShards * kDraws);
}

TEST(RngSplitTest, SplitStreamsIndependentOfParentConsumption) {
  // Split depends only on the construction seed, not on how much the
  // parent has already drawn — the property that lets shards be derived
  // lazily inside a parallel loop.
  Rng fresh(42);
  Rng consumed(42);
  for (int i = 0; i < 12345; ++i) (void)consumed.engine()();
  Rng a = fresh.Split(5);
  Rng b = consumed.Split(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

}  // namespace
}  // namespace kg
