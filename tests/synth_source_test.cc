#include "synth/structured_source.h"

#include <gtest/gtest.h>

#include <set>

namespace kg::synth {
namespace {

EntityUniverse SmallUniverse(uint64_t seed) {
  UniverseOptions opt;
  opt.num_people = 400;
  opt.num_movies = 300;
  opt.num_songs = 100;
  Rng rng(seed);
  return EntityUniverse::Generate(opt, rng);
}

TEST(DialectTest, AllDomainsHaveThreeDialects) {
  for (auto domain : {SourceDomain::kPeople, SourceDomain::kMovies,
                      SourceDomain::kMusic}) {
    const auto canonical = CanonicalColumns(domain);
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(DialectColumns(domain, d).size(), canonical.size());
    }
    // Dialect 0 is canonical.
    EXPECT_EQ(DialectColumns(domain, 0), canonical);
  }
}

TEST(EmitSourceTest, CoverageControlsSize) {
  const auto u = SmallUniverse(1);
  SourceOptions low, high;
  low.coverage = 0.2;
  high.coverage = 0.9;
  low.popularity_bias = high.popularity_bias = 0.0;
  Rng r1(2), r2(2);
  const auto small = EmitSource(u, low, r1);
  const auto large = EmitSource(u, high, r2);
  EXPECT_LT(small.records.size(), large.records.size());
  EXPECT_NEAR(static_cast<double>(large.records.size()),
              0.9 * u.movies().size(), 40.0);
}

TEST(EmitSourceTest, PopularityBiasSkewsCoverageToHead) {
  const auto u = SmallUniverse(3);
  SourceOptions opt;
  opt.coverage = 0.3;
  opt.popularity_bias = 1.0;
  Rng rng(4);
  const auto table = EmitSource(u, opt, rng);
  size_t head = 0, tail = 0;
  for (const auto& rec : table.records) {
    if (rec.true_entity < u.movies().size() / 3) ++head;
    if (rec.true_entity >= 2 * u.movies().size() / 3) ++tail;
  }
  EXPECT_GT(head, tail);
}

TEST(EmitSourceTest, DialectColumnsUsedInRecords) {
  const auto u = SmallUniverse(5);
  SourceOptions opt;
  opt.domain = SourceDomain::kMovies;
  opt.schema_dialect = 1;
  opt.missing_rate = 0.0;
  Rng rng(6);
  const auto table = EmitSource(u, opt, rng);
  ASSERT_FALSE(table.records.empty());
  for (const auto& rec : table.records) {
    EXPECT_TRUE(rec.fields.count("movie_name"));
    EXPECT_FALSE(rec.fields.count("title"));
  }
}

TEST(EmitSourceTest, MissingRateApproximatelyHolds) {
  const auto u = SmallUniverse(7);
  SourceOptions opt;
  opt.missing_rate = 0.3;
  opt.coverage = 0.8;
  opt.popularity_bias = 0.0;
  Rng rng(8);
  const auto table = EmitSource(u, opt, rng);
  size_t cells = 0, total = 0;
  for (const auto& rec : table.records) {
    cells += rec.fields.size();
    total += table.columns.size();
  }
  EXPECT_NEAR(1.0 - static_cast<double>(cells) / total, 0.3, 0.05);
}

TEST(EmitSourceTest, ValueAccuracyApproximatelyHolds) {
  const auto u = SmallUniverse(9);
  SourceOptions opt;
  opt.domain = SourceDomain::kMovies;
  opt.value_accuracy = 0.85;
  opt.missing_rate = 0.0;
  opt.coverage = 0.9;
  opt.popularity_bias = 0.0;
  Rng rng(10);
  const auto table = EmitSource(u, opt, rng);
  size_t correct = 0, total = 0;
  for (const auto& rec : table.records) {
    const auto& movie = u.movies()[rec.true_entity];
    auto it = rec.fields.find("release_year");
    if (it == rec.fields.end()) continue;
    ++total;
    correct += it->second == std::to_string(movie.release_year);
  }
  EXPECT_NEAR(static_cast<double>(correct) / total, 0.85, 0.05);
}

TEST(EmitSourceTest, DuplicatesShareTrueEntity) {
  const auto u = SmallUniverse(11);
  SourceOptions opt;
  opt.duplicate_rate = 0.5;
  opt.coverage = 0.5;
  Rng rng(12);
  const auto table = EmitSource(u, opt, rng);
  std::set<uint32_t> seen;
  size_t dups = 0;
  for (const auto& rec : table.records) {
    if (!seen.insert(rec.true_entity).second) ++dups;
  }
  EXPECT_GT(dups, table.records.size() / 5);
}

TEST(EmitSourceTest, LocalIdsUnique) {
  const auto u = SmallUniverse(13);
  SourceOptions opt;
  opt.duplicate_rate = 0.3;
  Rng rng(14);
  const auto table = EmitSource(u, opt, rng);
  std::set<std::string> ids;
  for (const auto& rec : table.records) {
    EXPECT_TRUE(ids.insert(rec.local_id).second);
  }
}

}  // namespace
}  // namespace kg::synth
