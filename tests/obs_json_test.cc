// JsonWriter/ParseJson round-trip contract: every exposition sink and
// BENCH_*.json artifact renders through JsonWriter and must parse back
// under the strict parser — escaping, number formatting, and the bench
// envelope schema are all pinned here.

#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/bench_sink.h"

namespace kg::obs {
namespace {

Result<JsonValue> MustParse(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " for: " << text;
  return parsed;
}

TEST(JsonWriterTest, ComposesAndRoundTrips) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("kg");
  w.Key("count").Int(-3);
  w.Key("big").UInt(18446744073709551615ull);
  w.Key("ratio").Double(0.25, 3);
  w.Key("ok").Bool(true);
  w.Key("missing").Null();
  w.Key("items").BeginArray().Int(1).Int(2).Int(3).EndArray();
  w.Key("nested").BeginObject().Key("x").Double(1.5, 1).EndObject();
  w.EndObject();
  const std::string doc = w.Take();

  const auto parsed = MustParse(doc);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& v = *parsed;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("name")->string_value, "kg");
  EXPECT_DOUBLE_EQ(v.Find("count")->number, -3.0);
  EXPECT_DOUBLE_EQ(v.Find("ratio")->number, 0.25);
  EXPECT_TRUE(v.Find("ok")->bool_value);
  EXPECT_TRUE(v.Find("missing")->is_null());
  ASSERT_TRUE(v.Find("items")->is_array());
  ASSERT_EQ(v.Find("items")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("items")->array[1].number, 2.0);
  EXPECT_DOUBLE_EQ(v.Find("nested")->Find("x")->number, 1.5);
}

TEST(JsonWriterTest, RawSplicesNestedDocuments) {
  JsonWriter inner;
  inner.BeginObject().Key("a").Int(1).EndObject();
  JsonWriter outer;
  outer.BeginObject().Key("payload").Raw(inner.Take()).EndObject();
  const auto parsed = MustParse(outer.Take());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("payload")->Find("a")->number, 1.0);
}

TEST(JsonWriterTest, NonFiniteDoublesRenderAsNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  const auto parsed = MustParse(w.Take());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->array[0].is_null());
  EXPECT_TRUE(parsed->array[1].is_null());
}

TEST(JsonEscapeTest, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  // UTF-8 passes through byte-for-byte.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonRoundTripTest, EscapedStringsSurviveWriterAndParser) {
  const std::string nasty = "q\"uote \\slash \n\t\r\b\f ctrl:\x01 caf\xc3\xa9";
  JsonWriter w;
  w.BeginObject().Key(nasty).String(nasty).EndObject();
  const auto parsed = MustParse(w.Take());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->object.size(), 1u);
  EXPECT_EQ(parsed->object.begin()->first, nasty);
  EXPECT_EQ(parsed->object.begin()->second.string_value, nasty);
}

TEST(JsonParserTest, UnicodeEscapesDecodeToUtf8) {
  auto decode = [](const std::string& doc) {
    const auto parsed = ParseJson(doc);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    return parsed.ok() ? parsed->string_value : std::string();
  };
  EXPECT_EQ(decode("\"\\u0041\""), "A");
  EXPECT_EQ(decode("\"\\u00e9\""), "\xc3\xa9");    // 2-byte UTF-8
  EXPECT_EQ(decode("\"\\u20AC\""), "\xe2\x82\xac");  // 3-byte UTF-8
  EXPECT_EQ(decode("\"\\u0031\\u0032\""), "12");
  EXPECT_FALSE(ParseJson("\"\\ud800\"").ok());  // surrogate
  EXPECT_FALSE(ParseJson("\"\\u00g1\"").ok());  // bad hex
  EXPECT_FALSE(ParseJson("\"\\u00\"").ok());    // truncated
}

TEST(JsonParserTest, ParsesNumbersWhitespaceAndLiterals) {
  EXPECT_DOUBLE_EQ(MustParse("  -12.5e2  ")->number, -1250.0);
  EXPECT_DOUBLE_EQ(MustParse("0")->number, 0.0);
  EXPECT_TRUE(MustParse("true")->bool_value);
  EXPECT_FALSE(MustParse("false")->bool_value);
  EXPECT_TRUE(MustParse("null")->is_null());
  EXPECT_TRUE(MustParse(" { } ")->is_object());
  EXPECT_TRUE(MustParse("[ ]")->is_array());
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1",          // unterminated array
      "\"abc",       // unterminated string
      "tru",         // bad literal
      "{\"a\":}",    // missing value
      "{\"a\" 1}",   // missing colon
      "{a:1}",       // unquoted key
      "[1 2]",       // missing comma
      "1.2.3",       // malformed number
      "{} trailing",  // trailing garbage
      "[1],",        // trailing garbage
      "\"a\x01b\"",  // raw control character in string
      "\"bad\\x\"",  // bad escape
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(ParseJson(doc).ok()) << "accepted: " << doc;
  }
}

TEST(JsonParserTest, BoundsNestingDepth) {
  std::string deep_ok(40, '['), deep_bad(100, '[');
  deep_ok += std::string(40, ']');
  deep_bad += std::string(100, ']');
  EXPECT_TRUE(ParseJson(deep_ok).ok());
  EXPECT_FALSE(ParseJson(deep_bad).ok());
}

TEST(JsonParserTest, ObjectKeysAreSortedForDeterministicIteration) {
  const auto parsed = MustParse("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> keys;
  for (const auto& [key, value] : parsed->object) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "m", "z"}));
}

// The satellite contract: every BENCH_*.json artifact goes through
// JsonSink and parses back with the uniform metadata envelope.
TEST(JsonSinkTest, EnvelopeCarriesUniformMetadataAndParses) {
  const JsonSink sink("mybench", 7, 3);
  const std::string doc = sink.Render("{\"rows\":[1,2],\"ok\":true}");
  const auto parsed = MustParse(doc);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& v = *parsed;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("schema_version")->number, 2.0);
  EXPECT_EQ(v.Find("bench")->string_value, "mybench");
  EXPECT_DOUBLE_EQ(v.Find("seed")->number, 7.0);
  EXPECT_DOUBLE_EQ(v.Find("threads")->number, 3.0);
  ASSERT_NE(v.Find("git"), nullptr);
  EXPECT_TRUE(v.Find("git")->is_string());
  EXPECT_FALSE(v.Find("git")->string_value.empty());
  const JsonValue* payload = v.Find("payload");
  ASSERT_NE(payload, nullptr);
  ASSERT_TRUE(payload->is_object());
  EXPECT_TRUE(payload->Find("ok")->bool_value);
  ASSERT_EQ(payload->Find("rows")->array.size(), 2u);
}

TEST(JsonSinkTest, GitDescribeIsNonEmpty) {
  EXPECT_FALSE(GitDescribe().empty());
}

}  // namespace
}  // namespace kg::obs
